"""JSON (de)serialization for per-run metric records.

Simulation results need to cross process boundaries (the parallel sweep
runner ships them back from worker processes as plain dicts) and persist
on disk (the sweep result cache). The format is a versioned, flat JSON
document so cached results survive unrelated code changes and can be
inspected with standard tools.

Versioning policy: documents are written at the **lowest schema version
that can represent them**. A result without an observability report
serializes exactly as schema 1 — byte-identical to every document the
pre-obs code wrote, which is what keeps the pinned golden digests valid.
A result carrying ``result.obs`` serializes as schema 2, which nests
the diagnostics (counters, timers, drop/eviction accounting, per-machine
strike totals) under one ``"obs"`` key. A result carrying
``result.serving`` (the open-loop steady-state windows) serializes as
schema 3, which adds the ``"serving"`` section — unlike the obs
diagnostics this section is a first-class result, so it round-trips.
Readers accept all three versions.

One deliberate asymmetry follows: the diagnostic fields on an
*uninstrumented* result (``requests_dropped`` etc. are maintained in
memory on every run) do not survive a serialization round trip — they
are best-effort debugging aids, not results, and persisting them would
break digest stability.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.metrics.collector import JobRecord, SimulationResult

#: Highest schema version this code writes and reads. Version 2 adds
#: the optional nested ``"obs"`` diagnostics section; version 3 adds
#: the optional ``"serving"`` steady-state section; version 1 is the
#: frozen flat layout every batch golden digest was captured against.
SCHEMA_VERSION = 3

#: Every version :func:`result_from_dict` accepts.
READABLE_SCHEMA_VERSIONS = (1, 2, 3)

#: Diagnostic fields serialized inside the schema-2 ``"obs"`` section
#: (and never as top-level scalars — see the versioning policy above).
_OBS_SECTION_FIELDS = (
    "requests_dropped",
    "evictions",
    "reinstatements",
    "machine_strikes",
    "obs",
)

#: Fields serialized as optional nested sections rather than top-level
#: scalars; ``"serving"`` is the schema-3 steady-state section.
_SECTION_FIELDS = _OBS_SECTION_FIELDS + ("serving",)

_JOB_FIELDS = tuple(f.name for f in dataclasses.fields(JobRecord))
_RESULT_SCALAR_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(SimulationResult)
    if f.name != "jobs" and f.name not in _SECTION_FIELDS
)


def job_record_to_dict(record: JobRecord) -> Dict[str, Any]:
    """Plain-dict form of one :class:`JobRecord`."""
    return {name: getattr(record, name) for name in _JOB_FIELDS}


def job_record_from_dict(data: Dict[str, Any]) -> JobRecord:
    """Inverse of :func:`job_record_to_dict`."""
    return JobRecord(**{name: data[name] for name in _JOB_FIELDS})


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Plain-dict form of a :class:`SimulationResult` (JSON-safe).

    ``result.obs is None`` and ``result.serving is None`` select the
    frozen schema-1 layout; an obs report alone selects schema 2 with
    the diagnostics nested under ``"obs"`` (strike-total keys become
    strings for JSON); a serving section selects schema 3, which also
    carries the obs section when one is present.
    """
    if result.serving is not None:
        version = 3
    elif result.obs is not None:
        version = 2
    else:
        version = 1
    doc: Dict[str, Any] = {"schema_version": version}
    for name in _RESULT_SCALAR_FIELDS:
        doc[name] = getattr(result, name)
    if result.obs is not None:
        doc["obs"] = {
            "counters": result.obs.get("counters", {}),
            "timers": result.obs.get("timers", {}),
            "requests_dropped": result.requests_dropped,
            "evictions": result.evictions,
            "reinstatements": result.reinstatements,
            "machine_strikes": {
                str(machine): strikes
                for machine, strikes in sorted(result.machine_strikes.items())
            },
        }
    if result.serving is not None:
        doc["serving"] = result.serving
    doc["jobs"] = [job_record_to_dict(r) for r in result.jobs]
    return doc


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`.

    Unknown scalar fields are ignored and missing ones fall back to the
    dataclass defaults, so documents written by slightly older or newer
    versions of the code still load when the schema version is readable.
    """
    version = data.get("schema_version", 1)
    if version not in READABLE_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected one of {READABLE_SCHEMA_VERSIONS})"
        )
    kwargs = {
        name: data[name] for name in _RESULT_SCALAR_FIELDS if name in data
    }
    jobs = [job_record_from_dict(d) for d in data.get("jobs", [])]
    result = SimulationResult(jobs=jobs, **kwargs)
    section = data.get("obs")
    if version >= 2 and isinstance(section, dict):
        result.requests_dropped = section.get("requests_dropped", 0)
        result.evictions = section.get("evictions", 0)
        result.reinstatements = section.get("reinstatements", 0)
        result.machine_strikes = {
            int(machine): strikes
            for machine, strikes in section.get("machine_strikes", {}).items()
        }
        result.obs = {
            "counters": section.get("counters", {}),
            "timers": section.get("timers", {}),
        }
    serving = data.get("serving")
    if version >= 3 and isinstance(serving, dict):
        result.serving = serving
    return result


def dumps_result(result: SimulationResult, **json_kwargs: Any) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), **json_kwargs)


def loads_result(text: str) -> SimulationResult:
    """Deserialize a result from a JSON string."""
    return result_from_dict(json.loads(text))
