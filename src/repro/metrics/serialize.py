"""JSON (de)serialization for per-run metric records.

Simulation results need to cross process boundaries (the parallel sweep
runner ships them back from worker processes as plain dicts) and persist
on disk (the sweep result cache). The format is a versioned, flat JSON
document so cached results survive unrelated code changes and can be
inspected with standard tools.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.metrics.collector import JobRecord, SimulationResult

#: Bump when the serialized layout changes incompatibly. Readers reject
#: documents with a different major schema.
SCHEMA_VERSION = 1

_JOB_FIELDS = tuple(f.name for f in dataclasses.fields(JobRecord))
_RESULT_SCALAR_FIELDS = tuple(
    f.name for f in dataclasses.fields(SimulationResult) if f.name != "jobs"
)


def job_record_to_dict(record: JobRecord) -> Dict[str, Any]:
    """Plain-dict form of one :class:`JobRecord`."""
    return {name: getattr(record, name) for name in _JOB_FIELDS}


def job_record_from_dict(data: Dict[str, Any]) -> JobRecord:
    """Inverse of :func:`job_record_to_dict`."""
    return JobRecord(**{name: data[name] for name in _JOB_FIELDS})


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Plain-dict form of a :class:`SimulationResult` (JSON-safe)."""
    doc: Dict[str, Any] = {"schema_version": SCHEMA_VERSION}
    for name in _RESULT_SCALAR_FIELDS:
        doc[name] = getattr(result, name)
    doc["jobs"] = [job_record_to_dict(r) for r in result.jobs]
    return doc


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`.

    Unknown scalar fields are ignored and missing ones fall back to the
    dataclass defaults, so documents written by slightly older or newer
    versions of the code still load when the schema version matches.
    """
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    kwargs = {
        name: data[name] for name in _RESULT_SCALAR_FIELDS if name in data
    }
    jobs = [job_record_from_dict(d) for d in data.get("jobs", [])]
    return SimulationResult(jobs=jobs, **kwargs)


def dumps_result(result: SimulationResult, **json_kwargs: Any) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), **json_kwargs)


def loads_result(text: str) -> SimulationResult:
    """Deserialize a result from a JSON string."""
    return result_from_dict(json.loads(text))
