"""Per-run metric records produced by the simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.workload.generator import bin_index_for_size


@dataclass
class JobRecord:
    """Summary of one completed job."""

    job_id: int
    name: str
    num_tasks: int
    dag_length: int
    arrival_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def size_bin(self) -> int:
        """Paper's job-size bin index (Fig. 7)."""
        return bin_index_for_size(self.num_tasks)


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    scheduler_name: str
    jobs: List[JobRecord] = field(default_factory=list)

    # speculation accounting
    total_copies: int = 0
    speculative_copies: int = 0
    speculative_wins: int = 0
    killed_copies: int = 0
    wasted_slot_time: float = 0.0
    useful_slot_time: float = 0.0
    local_copies: int = 0
    remote_copies: int = 0

    # decentralized accounting
    messages_sent: int = 0
    guideline2_decisions: int = 0
    guideline3_decisions: int = 0

    # diagnostics (PR 5/6 follow-ons). Maintained in memory on every
    # run; serialized only under the schema-2 "obs" section when
    # observability is enabled, so obs-off documents — and therefore
    # every pinned golden digest — stay byte-identical to schema 1.
    # ``compare=False`` keeps them out of result equality for the same
    # reason: they are best-effort debugging aids that do not survive a
    # schema-1 round trip (a fresh run and its cached replay must still
    # compare equal).
    #: Queued probe requests dropped because their target was dead,
    #: evicted, or their job already complete (decentralized plane).
    requests_dropped: int = field(default=0, compare=False)
    #: Machines/workers evicted by the blacklist policy during the run.
    evictions: int = field(default=0, compare=False)
    #: Evicted machines/workers returned to service during the run.
    reinstatements: int = field(default=0, compare=False)
    #: Lifetime straggler-strike totals per machine id (never reset,
    #: even when an eviction clears the policy's active strike window).
    machine_strikes: Dict[int, int] = field(
        default_factory=dict, compare=False
    )
    #: Observability report (counters + phase timers) attached at the
    #: end of an instrumented run; ``None`` on uninstrumented runs.
    obs: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: Steady-state windowed metrics (warm-up-truncated per-window tail
    #: JCT / queueing delay, time-averaged depth and utilization)
    #: attached by the serving driver; ``None`` on batch runs. Unlike
    #: the obs diagnostics these *are* results: they serialize under
    #: the schema-3 "serving" section, survive round trips, and feed
    #: golden digests — hence compared for equality.
    serving: Optional[Dict[str, Any]] = None

    def job_by_id(self) -> Dict[int, JobRecord]:
        return {r.job_id: r for r in self.jobs}

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def mean_job_duration(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(r.duration for r in self.jobs) / len(self.jobs)

    @property
    def speculation_task_fraction(self) -> float:
        """Fraction of all copies that were speculative (paper: ~25% of
        tasks in Facebook's cluster are speculative)."""
        if self.total_copies == 0:
            return 0.0
        return self.speculative_copies / self.total_copies

    @property
    def speculation_resource_fraction(self) -> float:
        """Fraction of slot-time spent on copies that were killed
        (paper: ~21% of resource usage)."""
        total = self.wasted_slot_time + self.useful_slot_time
        if total <= 0:
            return 0.0
        return self.wasted_slot_time / total

    @property
    def data_locality_fraction(self) -> float:
        total = self.local_copies + self.remote_copies
        if total == 0:
            return 1.0
        return self.local_copies / total


class MetricsCollector:
    """Accumulates records during a simulation run."""

    def __init__(self, scheduler_name: str) -> None:
        self.result = SimulationResult(scheduler_name=scheduler_name)
        #: Optional serving-regime aggregator (see
        #: :mod:`repro.serving.windows`); one ``is not None`` check on
        #: the completion path, so batch runs pay nothing.
        self.serving_window = None

    def record_job_completion(
        self,
        job_id: int,
        name: str,
        num_tasks: int,
        dag_length: int,
        arrival_time: float,
        finish_time: float,
    ) -> None:
        if finish_time < arrival_time:
            raise ValueError("finish_time before arrival_time")
        self.result.jobs.append(
            JobRecord(
                job_id=job_id,
                name=name,
                num_tasks=num_tasks,
                dag_length=dag_length,
                arrival_time=arrival_time,
                finish_time=finish_time,
            )
        )
        if self.serving_window is not None:
            self.serving_window.on_completion(
                job_id, arrival_time, finish_time
            )

    def record_copy_launch(self, speculative: bool, local: bool) -> None:
        self.result.total_copies += 1
        if speculative:
            self.result.speculative_copies += 1
        if local:
            self.result.local_copies += 1
        else:
            self.result.remote_copies += 1

    def record_copy_finished(
        self, slot_time: float, speculative_win: bool = False
    ) -> None:
        self.result.useful_slot_time += slot_time
        if speculative_win:
            self.result.speculative_wins += 1

    def record_copy_killed(self, slot_time: float) -> None:
        self.result.killed_copies += 1
        self.result.wasted_slot_time += slot_time

    def record_message(self, count: int = 1) -> None:
        self.result.messages_sent += count

    def record_guideline_decision(self, constrained: bool) -> None:
        if constrained:
            self.result.guideline2_decisions += 1
        else:
            self.result.guideline3_decisions += 1

    def record_request_dropped(self, count: int = 1) -> None:
        self.result.requests_dropped += count

    def record_eviction(self) -> None:
        self.result.evictions += 1

    def record_reinstatement(self) -> None:
        self.result.reinstatements += 1
