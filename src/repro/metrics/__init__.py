"""Metrics collection, serialization, and cross-run analysis."""

from repro.metrics.collector import JobRecord, MetricsCollector, SimulationResult
from repro.metrics.serialize import (
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
)
from repro.metrics.tables import format_table, print_table
from repro.metrics.analysis import (
    bin_durations,
    gain_cdf,
    mean_duration,
    mean_reduction_percent,
    per_job_gains,
    percentile,
    reduction_by_bin,
    slowdown_stats,
)

__all__ = [
    "JobRecord",
    "MetricsCollector",
    "SimulationResult",
    "mean_duration",
    "percentile",
    "mean_reduction_percent",
    "per_job_gains",
    "gain_cdf",
    "bin_durations",
    "reduction_by_bin",
    "slowdown_stats",
    "result_to_dict",
    "result_from_dict",
    "dumps_result",
    "loads_result",
    "format_table",
    "print_table",
]
