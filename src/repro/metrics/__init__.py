"""Metrics collection and cross-run analysis (gains, bins, CDFs)."""

from repro.metrics.collector import JobRecord, MetricsCollector, SimulationResult
from repro.metrics.analysis import (
    bin_durations,
    gain_cdf,
    mean_duration,
    mean_reduction_percent,
    per_job_gains,
    percentile,
    reduction_by_bin,
    slowdown_stats,
)

__all__ = [
    "JobRecord",
    "MetricsCollector",
    "SimulationResult",
    "mean_duration",
    "percentile",
    "mean_reduction_percent",
    "per_job_gains",
    "gain_cdf",
    "bin_durations",
    "reduction_by_bin",
    "slowdown_stats",
]
