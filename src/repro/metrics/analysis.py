"""Cross-run analysis: the quantities the paper's figures report.

All "gains" follow the paper's convention: *reduction (%) in average job
duration* of the candidate scheduler versus a baseline, with jobs matched
by id (both runs replay the same trace).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.metrics.collector import JobRecord, SimulationResult
from repro.workload.generator import JOB_SIZE_BINS


def mean_duration(records: Sequence[JobRecord]) -> float:
    if not records:
        return 0.0
    return sum(r.duration for r in records) / len(records)


def percentile(values: Sequence[float], q: float) -> float:
    """q-quantile (0..1) with linear interpolation."""
    if not values:
        raise ValueError("empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def mean_reduction_percent(
    baseline: SimulationResult, candidate: SimulationResult
) -> float:
    """Reduction (%) in *average* job duration vs the baseline."""
    base = baseline.mean_job_duration
    cand = candidate.mean_job_duration
    if base <= 0:
        return 0.0
    return 100.0 * (base - cand) / base


def per_job_gains(
    baseline: SimulationResult, candidate: SimulationResult
) -> Dict[int, float]:
    """Per-job reduction (%) in duration, matched by job id."""
    base_by_id = baseline.job_by_id()
    gains: Dict[int, float] = {}
    for record in candidate.jobs:
        base = base_by_id.get(record.job_id)
        if base is None or base.duration <= 0:
            continue
        gains[record.job_id] = (
            100.0 * (base.duration - record.duration) / base.duration
        )
    return gains


def gain_cdf(
    baseline: SimulationResult, candidate: SimulationResult
) -> List[Tuple[float, float]]:
    """CDF of per-job gains as (gain %, cumulative fraction) pairs
    (Fig. 8a)."""
    gains = sorted(per_job_gains(baseline, candidate).values())
    n = len(gains)
    return [(g, (i + 1) / n) for i, g in enumerate(gains)]


def bin_durations(
    result: SimulationResult,
) -> Dict[int, List[JobRecord]]:
    """Group job records by the paper's size bins."""
    bins: Dict[int, List[JobRecord]] = {i: [] for i in range(len(JOB_SIZE_BINS))}
    for record in result.jobs:
        bins[record.size_bin].append(record)
    return bins


def reduction_by_bin(
    baseline: SimulationResult, candidate: SimulationResult
) -> Dict[int, float]:
    """Reduction (%) in average duration per job-size bin (Fig. 7)."""
    base_bins = bin_durations(baseline)
    cand_bins = bin_durations(candidate)
    out: Dict[int, float] = {}
    for index in base_bins:
        base = mean_duration(base_bins[index])
        cand = mean_duration(cand_bins[index])
        if base > 0 and cand_bins[index]:
            out[index] = 100.0 * (base - cand) / base
    return out


def reduction_by_dag_length(
    baseline: SimulationResult, candidate: SimulationResult
) -> Dict[int, float]:
    """Reduction (%) in average duration grouped by DAG length (Fig. 8b,
    Fig. 12b)."""
    base_groups: Dict[int, List[JobRecord]] = {}
    cand_groups: Dict[int, List[JobRecord]] = {}
    for r in baseline.jobs:
        base_groups.setdefault(r.dag_length, []).append(r)
    for r in candidate.jobs:
        cand_groups.setdefault(r.dag_length, []).append(r)
    out: Dict[int, float] = {}
    for length, base_records in base_groups.items():
        cand_records = cand_groups.get(length)
        if not cand_records:
            continue
        base = mean_duration(base_records)
        cand = mean_duration(cand_records)
        if base > 0:
            out[length] = 100.0 * (base - cand) / base
    return out


def slowdown_stats(
    fair: SimulationResult, candidate: SimulationResult
) -> Tuple[float, float, float]:
    """(fraction of jobs slowed, mean slowdown % of slowed jobs, worst
    slowdown %) versus a perfectly fair run (Fig. 10b/10c)."""
    fair_by_id = fair.job_by_id()
    slowdowns: List[float] = []
    matched = 0
    for record in candidate.jobs:
        base = fair_by_id.get(record.job_id)
        if base is None or base.duration <= 0:
            continue
        matched += 1
        change = 100.0 * (record.duration - base.duration) / base.duration
        if change > 1e-9:
            slowdowns.append(change)
    if matched == 0:
        return (0.0, 0.0, 0.0)
    if not slowdowns:
        return (0.0, 0.0, 0.0)
    return (
        len(slowdowns) / matched,
        sum(slowdowns) / len(slowdowns),
        max(slowdowns),
    )
