"""The third scheduler plane: periodic batch-mode scheduling rounds.

Where the centralized plane reschedules on every arrival and every copy
completion, this plane runs Firmament-style *rounds*: jobs accumulate in
the pending buffer between rounds, and a single recurring engine event
every ``round_interval`` virtual seconds runs the allocation policy over
the full buffer and binds tasks.

The simulator subclasses :class:`~repro.centralized.simulator
.CentralizedSimulator` and reuses its entire dispatch machinery — the
allocation policies, the shared :mod:`repro.runtime` core (JobRuntime +
CopyLedger), speculation, stragglers, blacklisting, and obs all work
unchanged. Only the *when* changes:

* ``_on_job_arrival`` buffers the job (runtime created, phases
  activated) without dispatching;
* copy completions request the next round instead of rescheduling
  inline;
* the periodic straggler scan marks speculation due and lets the next
  round evaluate it — rounds are the only dispatch points.

Rounds are demand-armed like the speculation check: one is scheduled
only while jobs exist and none is pending, so an idle simulator
schedules nothing and the run terminates naturally. ``round_interval ==
0`` degenerates to a round per event batch at the same timestamp, which
converges to the per-arrival centralized schedule (pinned by a property
test).
"""

from __future__ import annotations

from repro.centralized.simulator import CentralizedSimulator
from repro.workload.job import Job


class BatchSimulator(CentralizedSimulator):
    """Periodic-rounds variant of the centralized simulator."""

    __slots__ = ("round_interval", "_round_scheduled", "_spec_due")

    def __init__(self, *args, round_interval: float = 0.5, **kwargs) -> None:
        if round_interval < 0.0:
            raise ValueError("round_interval must be non-negative")
        super().__init__(*args, **kwargs)
        self.round_interval = round_interval
        self._round_scheduled = False
        self._spec_due = False
        self.metrics.result.scheduler_name = f"batch-{self.policy.name}"

    # ------------------------------------------------------------- events ----

    def _on_job_arrival(self, job: Job) -> None:
        # Same bookkeeping as the per-arrival plane (shared `_admit_job`,
        # which also reserves the job's slot in the incremental
        # allocator), minus the immediate reschedule: the job waits in
        # the buffer for the next round. Because the allocation cache
        # lives on the shared simulator core, a round only recomputes
        # the jobs whose states changed since the previous round — the
        # arrival/completion events in between just mark them dirty.
        self._admit_job(job)
        self._ensure_round()
        self._ensure_spec_check()

    def _ensure_round(self) -> None:
        if self._round_scheduled or not self._jobs:
            return
        self._round_scheduled = True
        self.sim.schedule(self.round_interval, self._on_round)

    def _on_round(self) -> None:
        self._round_scheduled = False
        if not self._jobs:
            self._spec_due = False
            return
        evaluate = self._spec_due
        self._spec_due = False
        self._reschedule(evaluate_speculation=evaluate)
        # At a zero interval re-arming here would spin forever on the
        # same timestamp; rounds are then armed purely by events
        # (arrivals, completions, straggler scans).
        if self.round_interval > 0.0:
            self._ensure_round()

    def _on_spec_check(self) -> None:
        self._spec_check_scheduled = False
        if not self._jobs:
            return
        self._spec_due = True
        self._ensure_round()
        self._ensure_spec_check()

    def _request_dispatch(self) -> None:
        # Copy completions free slots, but binding waits for the round.
        self._ensure_round()
