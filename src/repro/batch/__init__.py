"""Batch-mode scheduling plane: periodic rounds over a pending buffer."""

from repro.batch.simulator import BatchSimulator

__all__ = ["BatchSimulator"]
