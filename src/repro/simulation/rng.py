"""Seedable randomness for reproducible experiments.

Every stochastic component in the reproduction draws from a
:class:`RandomSource`, which wraps :class:`random.Random` and hands out
independent child streams. Two simulation runs with the same seed are
bit-identical; components that receive *named* substreams stay decoupled
(adding draws in one component does not perturb another).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional


class RandomSource:
    """A named hierarchy of deterministic random streams."""

    def __init__(self, seed: Optional[int] = 0, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._rng = random.Random(seed)
        self._children: Dict[str, "RandomSource"] = {}

    @property
    def rng(self) -> random.Random:
        """The underlying :class:`random.Random` stream."""
        return self._rng

    def child(self, name: str) -> "RandomSource":
        """Return (creating if needed) an independent named substream.

        The child's seed is derived from this source's seed and the child
        name, so the substream is stable regardless of how many draws have
        been made from the parent.
        """
        existing = self._children.get(name)
        if existing is not None:
            return existing
        # Stable across processes (unlike built-in str hashing).
        digest = hashlib.sha256(
            f"{self.seed}/{self.name}/{name}".encode("utf-8")
        ).digest()
        derived = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        child = RandomSource(seed=derived, name=f"{self.name}/{name}")
        self._children[name] = child
        return child

    # Convenience passthroughs -------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq):
        return self._rng.choice(seq)

    def sample(self, population, k: int):
        return self._rng.sample(population, k)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(name={self.name!r}, seed={self.seed})"
