"""A minimal, fast discrete-event simulation engine.

The engine keeps a binary heap of scheduled callbacks. Events are
cancellable (lazy deletion), deterministically ordered by
``(time, priority, sequence)`` so that runs are reproducible for a given
seed, and carry arbitrary positional arguments for their callback.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(5.0, fired.append, "a")
>>> _ = sim.schedule(1.0, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


class EventHandle:
    """Handle for a scheduled event, usable to cancel it.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires.
    cancelled:
        True once :meth:`cancel` has been called (or the event fired).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.4f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event simulator with cancellable, prioritised events.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default 0.0).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled stubs)."""
        return len(self._heap)

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        ``priority`` breaks ties among events at the same timestamp; lower
        values run first.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, priority, next(self._seq), fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                fn, args = head.fn, head.args
                head.cancel()  # mark consumed so stale handles are inert
                assert fn is not None
                fn(*args)
                executed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._heap:
            self._now = until
        elif until is not None and self._heap and self._heap[0].time > until:
            self._now = until
        return self._now

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
