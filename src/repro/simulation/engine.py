"""A minimal, fast discrete-event simulation engine.

The engine keeps a binary heap of scheduled callbacks. Events are
cancellable (lazy deletion), deterministically ordered by
``(time, priority, sequence)`` so that runs are reproducible for a given
seed, and carry arbitrary positional arguments for their callback.

Performance notes (the engine is the hot path of every simulator):

* heap entries are plain ``(time, priority, seq, handle)`` tuples, so
  ``heapq`` compares them in C instead of dispatching to
  ``EventHandle.__lt__`` — the ``seq`` component is unique, so the
  handle itself is never compared;
* cancelled events are lazily deleted, but the heap is *compacted*
  (filter + ``heapify``) once tombstones dominate, keeping pushes and
  pops logarithmic in the number of *live* events.  ``heapify`` of the
  filtered entries preserves the dispatch order exactly because the
  ``(time, priority, seq)`` key is a total order;
* :meth:`Simulator.schedule_many` amortizes bulk insertion (probe
  bursts, trace arrivals) by choosing between repeated pushes and a
  single ``heapify`` based on the relative batch size;
* the dispatch loop binds its hot attributes to locals.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(5.0, fired.append, "a")
>>> _ = sim.schedule(1.0, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable, Iterable, List, Optional, Tuple

#: Compaction never triggers below this many tombstones (tiny heaps are
#: cheap to scan and rebuilding them would be pure overhead).
_COMPACT_MIN_TOMBSTONES = 256


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


class EventHandle:
    """Handle for a scheduled event, usable to cancel it.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires.
    cancelled:
        True once :meth:`cancel` has been called (or the event fired).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._tombstones += 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.4f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event simulator with cancellable, prioritised events.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default 0.0).
    obs:
        Optional :class:`repro.obs.Obs` bundle. The engine itself only
        uses it coarsely — one ``engine.dispatch`` wall-timer sample per
        :meth:`run` call and an ``engine.compactions`` counter — so the
        per-event dispatch loop stays untouched either way.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_events_processed",
        "_running",
        "_tombstones",
        "_obs",
    )

    def __init__(self, start_time: float = 0.0, obs: Optional[Any] = None) -> None:
        self._now = float(start_time)
        # (time, priority, seq, handle) tuples; seq is unique so the
        # handle component is never compared.
        self._heap: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._tombstones = 0  # cancelled-but-still-queued entries
        self._obs = obs

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled stubs)."""
        return len(self._heap)

    def sequence_marker(self) -> int:
        """Opaque counter that advances on every scheduled event.

        Two observations of the same marker value bracket a window in
        which *nothing* was scheduled — batching layers (see
        ``repro.decentralized.simulator``) use this to prove that
        coalescing consecutive same-time messages into one event cannot
        reorder them relative to any other event.
        """
        return self._seq

    def credit_events(self, count: int) -> None:
        """Count ``count`` extra logical events as processed.

        Batched deliveries execute many logical events inside one engine
        event; crediting keeps :attr:`events_processed` comparable with
        the unbatched engine (one increment per delivered callback).
        """
        if count < 0:
            raise SimulationError(f"negative event credit: {count}")
        self._events_processed += count

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        ``priority`` breaks ties among events at the same timestamp; lower
        values run first.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, priority, seq, fn, args)
        handle._sim = self
        heapq.heappush(self._heap, (time, priority, seq, handle))
        if self._tombstones > _COMPACT_MIN_TOMBSTONES:
            self._maybe_compact()
        return handle

    def schedule_many(
        self,
        items: Iterable[Tuple[float, Callable[..., None], tuple]],
        *,
        absolute: bool = False,
        priority: int = 0,
    ) -> List[EventHandle]:
        """Batched :meth:`schedule`: one ``(delay, fn, args)`` per item.

        With ``absolute=True`` the first element of each item is an
        absolute timestamp instead of a delay. Equivalent to calling
        :meth:`schedule` / :meth:`schedule_at` once per item in order
        (identical sequence numbers, hence identical dispatch order),
        but large batches are inserted with a single ``heapify`` instead
        of one sift per event.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        entries: List[Tuple[float, int, int, EventHandle]] = []
        handles: List[EventHandle] = []
        for time, fn, args in items:
            if not absolute:
                time = now + time
            if time < now:
                raise SimulationError(
                    f"cannot schedule at {time} before current time {now}"
                )
            handle = EventHandle(time, priority, seq, fn, tuple(args))
            handle._sim = self
            entries.append((time, priority, seq, handle))
            handles.append(handle)
            seq += 1
        self._seq = seq
        # k pushes cost ~k*log2(n); extend+heapify costs ~(n+k). Pick the
        # cheaper; both yield the same heap *order* (total order by key).
        k, n = len(entries), len(heap)
        if k and n + k > 0 and k * max((n + k).bit_length(), 1) > n + k:
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        if self._tombstones > _COMPACT_MIN_TOMBSTONES:
            self._maybe_compact()
        return handles

    def _maybe_compact(self) -> None:
        """Rebuild the heap without tombstones once they dominate.

        Order-preserving: the filtered entries are re-heapified and the
        ``(time, priority, seq)`` key is a total order, so subsequent
        pops return live events in exactly the original sequence.
        """
        heap = self._heap
        if self._tombstones * 2 <= len(heap):
            return
        self._heap = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0
        if self._obs is not None:
            self._obs.counters.inc("engine.compactions")

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        unbounded = until is None and max_events is None
        obs = self._obs
        started = _time.perf_counter() if obs is not None else 0.0
        try:
            while heap:
                entry = heap[0]
                head = entry[3]
                if head.cancelled:
                    pop(heap)
                    self._tombstones -= 1
                    continue
                if not unbounded:
                    if until is not None and entry[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                pop(heap)
                self._now = entry[0]
                fn, args = head.fn, head.args
                # Mark consumed so stale handles are inert — without
                # going through cancel(), which would count a tombstone.
                head.cancelled = True
                head.fn = None
                head.args = ()
                head._sim = None
                assert fn is not None
                fn(*args)
                executed += 1
                self._events_processed += 1
                if heap is not self._heap:  # a callback forced compaction
                    heap = self._heap
        finally:
            self._running = False
            if obs is not None:
                obs.timers.add(
                    "engine.dispatch", _time.perf_counter() - started
                )
        if until is not None and self._now < until and not heap:
            self._now = until
        elif until is not None and heap and heap[0][0] > until:
            self._now = until
        return self._now

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None
