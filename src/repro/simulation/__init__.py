"""Discrete-event simulation substrate.

The entire reproduction — centralized and decentralized scheduling, task
execution, straggler races, probe/response messaging — runs on top of the
small event engine in this package.
"""

from repro.simulation.engine import EventHandle, Simulator
from repro.simulation.rng import RandomSource

__all__ = ["EventHandle", "Simulator", "RandomSource"]
