"""Workload substrate: tasks, phases, DAG jobs, and trace generators."""

from repro.workload.distributions import (
    BoundedParetoDistribution,
    ConstantDistribution,
    DiscreteDistribution,
    Distribution,
    EmpiricalDistribution,
    ExponentialDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    UniformDistribution,
)
from repro.workload.task import Task, TaskState
from repro.workload.phase import Phase
from repro.workload.job import Job
from repro.workload.generator import (
    TraceGenerator,
    WorkloadProfile,
    BinnedJobSizeDistribution,
    BING_PROFILE,
    FACEBOOK_PROFILE,
    SPARK_BING_PROFILE,
    SPARK_FACEBOOK_PROFILE,
)
from repro.workload.traces import Trace, arrival_rate_for_utilization

__all__ = [
    "BoundedParetoDistribution",
    "ConstantDistribution",
    "DiscreteDistribution",
    "Distribution",
    "EmpiricalDistribution",
    "ExponentialDistribution",
    "LogNormalDistribution",
    "ParetoDistribution",
    "UniformDistribution",
    "Task",
    "TaskState",
    "Phase",
    "Job",
    "TraceGenerator",
    "WorkloadProfile",
    "BinnedJobSizeDistribution",
    "FACEBOOK_PROFILE",
    "BING_PROFILE",
    "SPARK_FACEBOOK_PROFILE",
    "SPARK_BING_PROFILE",
    "Trace",
    "arrival_rate_for_utilization",
]
