"""Phases: groups of parallel tasks inside a job's DAG.

Multi-phase jobs (map → shuffle → reduce, or longer Hive/Scope chains) are
modelled as DAGs of phases. Downstream phases *pipeline* with upstream
ones: they become runnable once parents have completed a slow-start
fraction of their tasks (§4.2, [6] in the paper), and their communication
volume feeds the DAG weighting factor alpha.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.workload.task import Task


@dataclass
class Phase:
    """One phase (stage) of a job.

    Attributes
    ----------
    index:
        Position of this phase within the job (also its id in the DAG).
    tasks:
        The phase's tasks.
    parents:
        Indices of upstream phases this phase reads from. Empty for input
        phases.
    output_data:
        Total intermediate data (arbitrary units, e.g. MB) this phase
        produces for downstream consumers; used to compute alpha.
    slowstart:
        Fraction of each parent's tasks that must be finished before this
        phase's tasks may begin (pipelining threshold).
    """

    index: int
    tasks: List[Task]
    parents: Tuple[int, ...] = ()
    output_data: float = 0.0
    slowstart: float = 0.05

    _finished_count: int = field(default=0, compare=False)
    _remaining_work: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("phase must contain at least one task")
        if not 0.0 <= self.slowstart <= 1.0:
            raise ValueError("slowstart must be in [0, 1]")
        if self.output_data < 0:
            raise ValueError("output_data must be non-negative")
        self._total_work = sum(t.size for t in self.tasks)
        self._remaining_work = self._total_work

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def finished_tasks(self) -> int:
        return self._finished_count

    @property
    def remaining_tasks(self) -> int:
        return self.num_tasks - self._finished_count

    @property
    def is_complete(self) -> bool:
        return self._finished_count >= self.num_tasks

    @property
    def completed_fraction(self) -> float:
        return self._finished_count / self.num_tasks

    def mark_task_finished(self, task_size: float = 0.0) -> None:
        """Record completion of one of this phase's tasks.

        ``task_size`` keeps the incremental remaining-work tally exact;
        callers that do not track sizes may omit it (remaining work then
        degrades pro-rata)."""
        if self._finished_count >= self.num_tasks:
            raise RuntimeError(f"phase {self.index}: all tasks already finished")
        self._finished_count += 1
        if task_size > 0:
            self._remaining_work = max(0.0, self._remaining_work - task_size)
        else:
            self._remaining_work = self._total_work * (
                self.remaining_tasks / self.num_tasks
            )

    @property
    def mean_task_size(self) -> float:
        """Average intrinsic task size (static)."""
        return self._total_work / self.num_tasks

    def remaining_work(self) -> float:
        """Sum of sizes of unfinished tasks (used for alpha); O(1)."""
        return self._remaining_work

    def remaining_output_data(self) -> float:
        """Intermediate data not yet produced, pro-rated by task completion."""
        if self.num_tasks == 0:
            return 0.0
        return self.output_data * (self.remaining_tasks / self.num_tasks)

    def scale_work(self, factor: float) -> None:
        """Uniformly rescale an unstarted phase's task sizes and output.

        Used by the serving regime's heavy-tailed job-size modifier; the
        cached work totals scale with the tasks so the incremental
        remaining-work tally stays exact. Rescaling after tasks have
        finished would desynchronize that tally, hence the guard.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if self._finished_count:
            raise RuntimeError(
                f"phase {self.index}: cannot rescale after tasks finished"
            )
        for task in self.tasks:
            task.size *= factor
        self.output_data *= factor
        self._total_work *= factor
        self._remaining_work = self._total_work

    def reset_runtime_state(self) -> None:
        self._finished_count = 0
        self._remaining_work = self._total_work
        for task in self.tasks:
            task.reset_runtime_state()
