"""Tasks and their runtime state.

A :class:`Task` is the unit of scheduling. Tasks carry an intrinsic *size*
(work units); the actual wall-clock duration of a given *copy* of a task is
``size * slowdown`` where the slowdown comes from the straggler model and is
drawn independently per copy — this is what makes speculative execution a
race worth running.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class TaskState(enum.Enum):
    """Lifecycle of a task (not of an individual copy)."""

    PENDING = "pending"  # no copy launched yet
    RUNNING = "running"  # at least one copy is executing
    FINISHED = "finished"  # some copy completed; others killed


@dataclass
class Task:
    """One task of a job phase.

    Attributes
    ----------
    task_id:
        Globally unique identifier.
    job_id:
        Owning job.
    phase_index:
        Index of the owning phase within the job's DAG.
    size:
        Intrinsic work in time units (duration on a straggler-free, local
        slot).
    preferred_machines:
        Machines holding a replica of this task's input block; running on
        one of them is "data local". Empty for tasks with no input (or
        intermediate phases reading over the network).
    """

    task_id: int
    job_id: int
    phase_index: int
    size: float
    preferred_machines: Tuple[int, ...] = ()

    # Runtime state, owned by the simulator -----------------------------------
    state: TaskState = field(default=TaskState.PENDING, compare=False)
    finish_time: Optional[float] = field(default=None, compare=False)
    completed_by_speculative: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"task size must be positive, got {self.size}")

    @property
    def is_finished(self) -> bool:
        return self.state is TaskState.FINISHED

    def reset_runtime_state(self) -> None:
        """Clear runtime fields so the same trace can be replayed."""
        self.state = TaskState.PENDING
        self.finish_time = None
        self.completed_by_speculative = False

    def prefers(self, machine_id: int) -> bool:
        """True if ``machine_id`` holds a replica of this task's input."""
        return not self.preferred_machines or machine_id in self.preferred_machines
