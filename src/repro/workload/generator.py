"""Synthetic trace generators standing in for the Facebook / Bing traces.

The paper replays 6-hour slices of production traces from Facebook's
Hadoop cluster and Bing's Dryad cluster (§7.1). Those traces are
proprietary, so we synthesise workloads with the *published* distributional
properties:

* task durations are Pareto with tail index ``1 < beta < 2`` (§4.1);
* job sizes (task counts) are heavy-tailed, binned in the paper as
  <50, 51-150, 151-500, >500 tasks (Fig. 7);
* jobs are DAGs of 1-8 pipelined phases (Fig. 8b / Fig. 12b) with
  intermediate data that downstream phases read over the network;
* a sizeable fraction of jobs are *recurring* (same script run
  periodically), which is what makes alpha predictable (§6.3).

The Facebook-like and Bing-like profiles differ in tail index and in the
spread between small and large jobs — the paper notes Bing's larger
small/large spread gives Hopper slightly more headroom (§7.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.simulation.rng import RandomSource
from repro.workload.distributions import (
    BoundedParetoDistribution,
    DiscreteDistribution,
    Distribution,
    ParetoDistribution,
    UniformDistribution,
)
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import Task

#: Paper's job-size bins (Fig. 7 / Fig. 9 / Fig. 12a).
JOB_SIZE_BINS: Tuple[Tuple[int, Optional[int]], ...] = (
    (1, 50),
    (51, 150),
    (151, 500),
    (501, None),
)


@dataclass
class WorkloadProfile:
    """Distributional description of a cluster workload.

    Attributes
    ----------
    name:
        Human-readable profile name.
    beta:
        Pareto tail index of task durations.
    task_scale:
        Pareto scale (minimum task duration, seconds).
    job_size:
        Distribution of tasks in a job's *input* phase.
    dag_length:
        Distribution over the number of phases (>= 1).
    downstream_shrink:
        Multiplicative reduction of task count per downstream phase
        (reduce phases are smaller than map phases).
    output_data_per_task:
        Intermediate data produced per upstream task (network-time units
        per unit of network_rate).
    recurring_fraction:
        Fraction of jobs that belong to a recurring job family.
    num_recurring_families:
        Number of distinct recurring scripts.
    """

    name: str
    beta: float
    task_scale: float
    job_size: Distribution
    dag_length: Distribution
    downstream_shrink: float = 0.4
    output_data_per_task: Distribution = field(
        default_factory=lambda: UniformDistribution(0.2, 1.5)
    )
    recurring_fraction: float = 0.4
    num_recurring_families: int = 20

    def __post_init__(self) -> None:
        if not 0 < self.beta:
            raise ValueError("beta must be positive")
        if self.task_scale <= 0:
            raise ValueError("task_scale must be positive")
        if not 0.0 <= self.recurring_fraction <= 1.0:
            raise ValueError("recurring_fraction must be in [0, 1]")
        if not 0.0 < self.downstream_shrink <= 1.0:
            raise ValueError("downstream_shrink must be in (0, 1]")

    def task_size_distribution(self) -> ParetoDistribution:
        return ParetoDistribution(shape=self.beta, scale=self.task_scale)


class BinnedJobSizeDistribution(Distribution):
    """Job sizes drawn as a mixture over the paper's size bins.

    A bin is chosen with the given weights, then the size is drawn from a
    bounded Pareto within the bin — heavy-tailed overall but with every
    bin meaningfully populated, as in the production traces (Fig. 7 has
    non-trivial mass in all four bins).
    """

    def __init__(
        self,
        bin_weights: Sequence[float],
        max_tasks: int = 1500,
        within_bin_shape: float = 1.5,
    ) -> None:
        if len(bin_weights) != len(JOB_SIZE_BINS):
            raise ValueError(
                f"need {len(JOB_SIZE_BINS)} bin weights, got {len(bin_weights)}"
            )
        total = float(sum(bin_weights))
        if total <= 0:
            raise ValueError("bin weights must sum to a positive value")
        self.weights = [w / total for w in bin_weights]
        self._bins: List[BoundedParetoDistribution] = []
        for lo, hi in JOB_SIZE_BINS:
            upper = float(hi) if hi is not None else float(max_tasks)
            lower = max(2.0, float(lo))
            if upper <= lower:
                upper = lower + 1.0
            self._bins.append(
                BoundedParetoDistribution(
                    shape=within_bin_shape, lo=lower, hi=upper
                )
            )
        self._mean = sum(
            w * b.mean() for w, b in zip(self.weights, self._bins)
        )

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        acc = 0.0
        for weight, dist in zip(self.weights, self._bins):
            acc += weight
            if u <= acc:
                return dist.sample(rng)
        return self._bins[-1].sample(rng)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"BinnedJobSizeDistribution(weights={self.weights})"


#: Facebook-like profile: beta ~ 1.4, moderate job-size spread.
FACEBOOK_PROFILE = WorkloadProfile(
    name="facebook",
    beta=1.4,
    task_scale=1.0,
    job_size=BinnedJobSizeDistribution(
        bin_weights=(0.60, 0.20, 0.14, 0.06), max_tasks=1500
    ),
    dag_length=DiscreteDistribution(
        [
            (1, 0.30),
            (2, 0.30),
            (3, 0.15),
            (4, 0.10),
            (5, 0.06),
            (6, 0.04),
            (7, 0.03),
            (8, 0.02),
        ]
    ),
)

#: Interactive (in-memory Spark) variant of the Facebook workload used for
#: the decentralized evaluation (§7.1: sub-second to a few-second tasks,
#: small jobs dominate).
SPARK_FACEBOOK_PROFILE = WorkloadProfile(
    name="spark-facebook",
    beta=1.4,
    task_scale=1.0,
    job_size=BinnedJobSizeDistribution(
        bin_weights=(0.85, 0.10, 0.04, 0.01), max_tasks=600
    ),
    dag_length=DiscreteDistribution([(1, 0.60), (2, 0.25), (3, 0.15)]),
)

#: Interactive variant of the Bing workload (larger small/large spread).
SPARK_BING_PROFILE = WorkloadProfile(
    name="spark-bing",
    beta=1.6,
    task_scale=1.0,
    job_size=BinnedJobSizeDistribution(
        bin_weights=(0.88, 0.06, 0.03, 0.03), max_tasks=1200
    ),
    dag_length=DiscreteDistribution([(1, 0.55), (2, 0.25), (3, 0.20)]),
)

#: Bing-like profile: beta ~ 1.6, larger spread between small and large jobs.
BING_PROFILE = WorkloadProfile(
    name="bing",
    beta=1.6,
    task_scale=1.0,
    job_size=BinnedJobSizeDistribution(
        bin_weights=(0.68, 0.14, 0.10, 0.08), max_tasks=4000
    ),
    dag_length=DiscreteDistribution(
        [
            (1, 0.20),
            (2, 0.25),
            (3, 0.18),
            (4, 0.12),
            (5, 0.10),
            (6, 0.07),
            (7, 0.05),
            (8, 0.03),
        ]
    ),
)


#: The built-in workload profiles, keyed by ``profile.name``. This is a
#: snapshot kept for backward compatibility — the authoritative table is
#: :data:`repro.registry.WORKLOAD_PROFILES`, which also holds profiles
#: registered by plugins. The sweep subsystem references profiles by
#: name so that a :class:`repro.sweep.RunSpec` stays hashable and
#: JSON-serializable.
PROFILES = {
    profile.name: profile
    for profile in (
        FACEBOOK_PROFILE,
        SPARK_FACEBOOK_PROFILE,
        SPARK_BING_PROFILE,
        BING_PROFILE,
    )
}


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a registered :class:`WorkloadProfile` by its ``name``.

    Resolution goes through :data:`repro.registry.WORKLOAD_PROFILES`, so
    profiles registered after import are found too.
    """
    from repro.registry import WORKLOAD_PROFILES

    return WORKLOAD_PROFILES.get(name).factory


class TraceGenerator:
    """Generates jobs from a :class:`WorkloadProfile`.

    Task ids are globally unique across everything this generator
    produces. Locality preferences (3-replica placement) can be attached
    by passing ``num_machines``.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        random_source: Optional[RandomSource] = None,
        num_machines: Optional[int] = None,
        replicas: int = 3,
        max_phase_tasks: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.random_source = random_source or RandomSource(seed=0)
        self.num_machines = num_machines
        self.replicas = replicas
        self.max_phase_tasks = max_phase_tasks
        self._next_task_id = 0
        self._next_job_id = 0
        self._rng = self.random_source.child("generator").rng

    # -- internals ---------------------------------------------------------

    def _placement(self) -> Tuple[int, ...]:
        if self.num_machines is None:
            return ()
        k = min(self.replicas, self.num_machines)
        return tuple(self._rng.sample(range(self.num_machines), k))

    def _job_name(self) -> str:
        if self._rng.random() < self.profile.recurring_fraction:
            family = self._rng.randrange(self.profile.num_recurring_families)
            return f"{self.profile.name}-recurring-{family}"
        return f"{self.profile.name}-adhoc-{self._next_job_id}"

    def _make_phase(
        self,
        index: int,
        num_tasks: int,
        job_id: int,
        parents: Tuple[int, ...],
        is_input_phase: bool,
        output_data: float,
    ) -> Phase:
        size_dist = self.profile.task_size_distribution()
        tasks: List[Task] = []
        for _ in range(num_tasks):
            prefs = self._placement() if is_input_phase else ()
            tasks.append(
                Task(
                    task_id=self._next_task_id,
                    job_id=job_id,
                    phase_index=index,
                    size=size_dist.sample(self._rng),
                    preferred_machines=prefs,
                )
            )
            self._next_task_id += 1
        return Phase(
            index=index,
            tasks=tasks,
            parents=parents,
            output_data=output_data,
        )

    # -- public API ----------------------------------------------------------

    def next_job(self, arrival_time: float) -> Job:
        """Generate one job arriving at ``arrival_time``."""
        job_id = self._next_job_id
        self._next_job_id += 1

        input_tasks = max(1, int(round(self.profile.job_size.sample(self._rng))))
        if self.max_phase_tasks is not None:
            input_tasks = min(input_tasks, self.max_phase_tasks)
        dag_len = max(1, int(round(self.profile.dag_length.sample(self._rng))))

        phases: List[Phase] = []
        tasks_in_phase = input_tasks
        for index in range(dag_len):
            is_last = index == dag_len - 1
            output = 0.0
            if not is_last:
                per_task = self.profile.output_data_per_task.sample(self._rng)
                output = per_task * tasks_in_phase
            parents = (index - 1,) if index > 0 else ()
            phases.append(
                self._make_phase(
                    index=index,
                    num_tasks=tasks_in_phase,
                    job_id=job_id,
                    parents=parents,
                    is_input_phase=(index == 0),
                    output_data=output,
                )
            )
            tasks_in_phase = max(
                1, int(round(tasks_in_phase * self.profile.downstream_shrink))
            )

        return Job(
            job_id=job_id,
            arrival_time=arrival_time,
            phases=phases,
            name=self._job_name(),
        )

    def generate(
        self,
        num_jobs: int,
        interarrival_mean: float,
        start_time: float = 0.0,
    ) -> List[Job]:
        """Generate ``num_jobs`` with exponential interarrival times."""
        jobs: List[Job] = []
        t = start_time
        for _ in range(num_jobs):
            if interarrival_mean > 0:
                t += self._rng.expovariate(1.0 / interarrival_mean)
            jobs.append(self.next_job(arrival_time=t))
        return jobs

    def mean_job_work(self, samples: int = 200) -> float:
        """Monte-Carlo estimate of E[total task work per job].

        Used to tune arrival rates for a target utilization. Uses a
        dedicated RNG so it does not perturb the generation stream.
        """
        # Fresh stream per call so repeated estimates are identical.
        rng = random.Random(self.random_source.child("mean-work-probe").seed)
        size_dist = self.profile.task_size_distribution()
        total = 0.0
        for _ in range(samples):
            n = max(1, int(round(self.profile.job_size.sample(rng))))
            if self.max_phase_tasks is not None:
                n = min(n, self.max_phase_tasks)
            dag_len = max(1, int(round(self.profile.dag_length.sample(rng))))
            work = 0.0
            tasks_in_phase = n
            for index in range(dag_len):
                work += sum(
                    size_dist.sample(rng) for _ in range(tasks_in_phase)
                )
                tasks_in_phase = max(
                    1, int(round(tasks_in_phase * self.profile.downstream_shrink))
                )
            total += work
        return total / samples


def bin_index_for_size(num_tasks: int) -> int:
    """Map a job's task count to the paper's bin index (0..3)."""
    for i, (lo, hi) in enumerate(JOB_SIZE_BINS):
        if num_tasks >= lo and (hi is None or num_tasks <= hi):
            return i
    return len(JOB_SIZE_BINS) - 1


def bin_label(index: int) -> str:
    lo, hi = JOB_SIZE_BINS[index]
    if hi is None:
        return f"> {lo - 1}"
    return f"{lo}-{hi}"
