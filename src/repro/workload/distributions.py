"""Probability distributions used by the workload and straggler models.

The paper's analysis leans on heavy-tailed Pareto task durations with tail
index ``1 < beta < 2`` (§4.1); job sizes are heavy-tailed as well (§7.1).
All distributions sample from an explicit :class:`random.Random` stream so
experiments are reproducible.
"""

from __future__ import annotations

import bisect
import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple


class Distribution(ABC):
    """A one-dimensional distribution with explicit-RNG sampling."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one value using ``rng``."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic (or empirical) mean of the distribution."""

    def sample_many(self, rng: random.Random, n: int) -> List[float]:
        """Draw ``n`` values."""
        return [self.sample(rng) for _ in range(n)]


class ConstantDistribution(Distribution):
    """Degenerate distribution: always ``value``."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("constant must be non-negative")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantDistribution({self.value})"


class UniformDistribution(Distribution):
    """Uniform on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float) -> None:
        if hi < lo:
            raise ValueError("hi must be >= lo")
        self.lo = float(lo)
        self.hi = float(hi)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __repr__(self) -> str:
        return f"UniformDistribution({self.lo}, {self.hi})"


class ExponentialDistribution(Distribution):
    """Exponential with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialDistribution(mean={self._mean})"


class ParetoDistribution(Distribution):
    """Pareto with shape ``beta`` and scale ``xm``: P(X > x) = (xm/x)^beta.

    This is the paper's task-duration model; ``beta`` (1 < beta < 2 in the
    Facebook/Bing traces) controls how damaging stragglers are: smaller
    ``beta`` means heavier tails.
    """

    def __init__(self, shape: float, scale: float = 1.0) -> None:
        if shape <= 0:
            raise ValueError("shape must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF: x = xm * U^(-1/beta)
        u = 1.0 - rng.random()  # avoid 0
        return self.scale * u ** (-1.0 / self.shape)

    def mean(self) -> float:
        if self.shape <= 1.0:
            return math.inf
        return self.shape * self.scale / (self.shape - 1.0)

    def ccdf(self, x: float) -> float:
        """P(X > x)."""
        if x <= self.scale:
            return 1.0
        return (self.scale / x) ** self.shape

    def quantile(self, q: float) -> float:
        """Inverse CDF at probability ``q``."""
        if not 0.0 <= q < 1.0:
            raise ValueError("q must be in [0, 1)")
        return self.scale * (1.0 - q) ** (-1.0 / self.shape)

    def __repr__(self) -> str:
        return f"ParetoDistribution(shape={self.shape}, scale={self.scale})"


class BoundedParetoDistribution(Distribution):
    """Pareto truncated to ``[lo, hi]`` (finite mean even for beta <= 1)."""

    def __init__(self, shape: float, lo: float, hi: float) -> None:
        if shape <= 0:
            raise ValueError("shape must be positive")
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        self.shape = float(shape)
        self.lo = float(lo)
        self.hi = float(hi)

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF of the truncated Pareto.
        a, l, h = self.shape, self.lo, self.hi
        u = rng.random()
        return (l**-a - u * (l**-a - h**-a)) ** (-1.0 / a)

    def mean(self) -> float:
        a, l, h = self.shape, self.lo, self.hi
        if abs(a - 1.0) < 1e-12:
            return math.log(h / l) / (1.0 / l - 1.0 / h)
        num = a / (a - 1.0) * (l ** (1 - a) - h ** (1 - a))
        den = l**-a - h**-a
        return num / den

    def __repr__(self) -> str:
        return (
            f"BoundedParetoDistribution(shape={self.shape}, "
            f"lo={self.lo}, hi={self.hi})"
        )


class LogNormalDistribution(Distribution):
    """Log-normal with parameters ``mu`` and ``sigma`` of the underlying normal."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalDistribution(mu={self.mu}, sigma={self.sigma})"


class EmpiricalDistribution(Distribution):
    """Resamples uniformly from observed values."""

    def __init__(self, values: Sequence[float]) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        self.values = [float(v) for v in values]
        self._mean = sum(self.values) / len(self.values)

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.values)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"EmpiricalDistribution(n={len(self.values)})"


class DiscreteDistribution(Distribution):
    """Weighted choice over ``(value, weight)`` pairs."""

    def __init__(self, pairs: Sequence[Tuple[float, float]]) -> None:
        if not pairs:
            raise ValueError("pairs must be non-empty")
        total = float(sum(w for _, w in pairs))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.values = [float(v) for v, _ in pairs]
        self._cum: List[float] = []
        acc = 0.0
        for _, w in pairs:
            if w < 0:
                raise ValueError("weights must be non-negative")
            acc += w / total
            self._cum.append(acc)
        self._cum[-1] = 1.0
        self._mean = sum(v * w for v, w in pairs) / total

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        idx = bisect.bisect_left(self._cum, u)
        return self.values[min(idx, len(self.values) - 1)]

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"DiscreteDistribution(n={len(self.values)})"
