"""Jobs: DAGs of phases with pipelining and the alpha weighting (§4.2).

The job object is shared by both the centralized and decentralized
simulators. It exposes:

* ``runnable_tasks()`` — tasks whose phase is past the pipelining
  slow-start threshold and which have not finished;
* ``remaining_tasks()`` — the paper's ``T_i(t)``;
* ``alpha()`` — ratio of remaining downstream communication to remaining
  upstream work, summed over running phases for bushy DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.phase import Phase
from repro.workload.task import Task


@dataclass
class Job:
    """A job: a DAG of phases, each a set of parallel tasks.

    Attributes
    ----------
    job_id:
        Unique id.
    arrival_time:
        Submission time.
    phases:
        Topologically ordered phases (parents precede children).
    name:
        Recurring-job key; jobs with the same name are assumed to be runs
        of the same periodic script (used by the alpha estimator, §6.3).
    weight:
        Fair-share weight (1.0 = normal).
    """

    job_id: int
    arrival_time: float
    phases: List[Phase]
    name: str = ""
    weight: float = 1.0

    finish_time: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("job must contain at least one phase")
        seen = set()
        for phase in self.phases:
            for parent in phase.parents:
                if parent not in seen:
                    raise ValueError(
                        f"phase {phase.index} references parent {parent} that "
                        "does not precede it (phases must be topologically "
                        "ordered)"
                    )
            seen.add(phase.index)
        self._phase_by_index: Dict[int, Phase] = {p.index: p for p in self.phases}
        if len(self._phase_by_index) != len(self.phases):
            raise ValueError("duplicate phase indices")

    # -- basic structure -------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def dag_length(self) -> int:
        """Length of the longest parent chain (1 for single-phase jobs)."""
        depth: Dict[int, int] = {}
        for phase in self.phases:  # topological order
            if phase.parents:
                depth[phase.index] = 1 + max(depth[p] for p in phase.parents)
            else:
                depth[phase.index] = 1
        return max(depth.values())

    @property
    def num_tasks(self) -> int:
        return sum(p.num_tasks for p in self.phases)

    def phase(self, index: int) -> Phase:
        return self._phase_by_index[index]

    def all_tasks(self) -> List[Task]:
        return [t for p in self.phases for t in p.tasks]

    # -- runtime queries -------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        # Hot path (checked on every slot offer); plain loop instead of
        # all() + per-phase property dispatch.
        for p in self.phases:
            if p._finished_count < len(p.tasks):
                return False
        return True

    def remaining_tasks(self) -> int:
        """T_i(t): unfinished tasks across all phases."""
        # Hot path (every gossip refresh); avoid the per-phase property
        # dispatch of sum(p.remaining_tasks for p in self.phases).
        total = 0
        for p in self.phases:
            total += len(p.tasks) - p._finished_count
        return total

    def phase_is_runnable(self, phase: Phase) -> bool:
        """A phase may launch tasks once every parent has completed at
        least its slow-start fraction of tasks (pipelining)."""
        for parent_index in phase.parents:
            parent = self._phase_by_index[parent_index]
            if parent.completed_fraction < phase.slowstart:
                return False
        return True

    def runnable_phases(self) -> List[Phase]:
        return [
            p
            for p in self.phases
            if not p.is_complete and self.phase_is_runnable(p)
        ]

    def runnable_tasks(self) -> List[Task]:
        """Unfinished tasks belonging to runnable phases."""
        return [
            t
            for p in self.runnable_phases()
            for t in p.tasks
            if not t.is_finished
        ]

    def current_phases(self) -> List[Phase]:
        """Runnable-but-incomplete phases ("running front" of the DAG)."""
        return self.runnable_phases()

    def downstream_of(self, phase: Phase) -> List[Phase]:
        """Phases that directly read this phase's output."""
        return [p for p in self.phases if phase.index in p.parents]

    # -- alpha (§4.2, §6.3) ----------------------------------------------------

    def alpha(self, network_rate: float = 1.0) -> float:
        """DAG weighting factor.

        alpha = (remaining network transfer work of downstream phases) /
        (remaining compute work of the currently running phases), summed
        over the running front for bushy DAGs. ``network_rate`` converts
        data units into time units. Returns 1.0 for single-phase jobs or
        when the upstream front has no remaining work.
        """
        upstream_work = 0.0
        downstream_comm = 0.0
        for phase in self.current_phases():
            upstream_work += phase.remaining_work()
            for child in self.downstream_of(phase):
                if not child.is_complete:
                    downstream_comm += phase.remaining_output_data() / network_rate
        if upstream_work <= 0.0 or downstream_comm <= 0.0:
            return 1.0
        return downstream_comm / upstream_work

    def downstream_virtual_tasks(self, network_rate: float = 1.0) -> float:
        """V'_i(t) proxy: remaining downstream communication expressed in
        task-equivalents of the current front's mean task size."""
        front = self.current_phases()
        if not front:
            return 0.0
        total_tasks = sum(p.num_tasks for p in front)
        mean_size = (
            sum(p.mean_task_size * p.num_tasks for p in front) / total_tasks
            if total_tasks
            else 1.0
        )
        comm = sum(p.remaining_output_data() / network_rate for p in front)
        if mean_size <= 0:
            return 0.0
        return comm / mean_size

    def reset_runtime_state(self) -> None:
        """Clear all runtime state so a trace can be replayed."""
        self.finish_time = None
        for phase in self.phases:
            phase.reset_runtime_state()


def make_single_phase_job(
    job_id: int,
    arrival_time: float,
    task_sizes: Sequence[float],
    name: str = "",
    preferred: Optional[Sequence[Tuple[int, ...]]] = None,
    task_id_start: int = 0,
) -> Job:
    """Convenience constructor for a single-phase job."""
    tasks = []
    for i, size in enumerate(task_sizes):
        prefs: Tuple[int, ...] = ()
        if preferred is not None:
            prefs = tuple(preferred[i])
        tasks.append(
            Task(
                task_id=task_id_start + i,
                job_id=job_id,
                phase_index=0,
                size=float(size),
                preferred_machines=prefs,
            )
        )
    phase = Phase(index=0, tasks=tasks)
    return Job(job_id=job_id, arrival_time=arrival_time, phases=[phase], name=name)


def make_chain_job(
    job_id: int,
    arrival_time: float,
    phase_task_sizes: Sequence[Sequence[float]],
    phase_output_data: Optional[Sequence[float]] = None,
    name: str = "",
    slowstart: float = 0.05,
    task_id_start: int = 0,
) -> Job:
    """Convenience constructor for a linear chain DAG (map → ... → reduce)."""
    phases: List[Phase] = []
    next_task_id = task_id_start
    for index, sizes in enumerate(phase_task_sizes):
        tasks = [
            Task(
                task_id=next_task_id + i,
                job_id=job_id,
                phase_index=index,
                size=float(s),
            )
            for i, s in enumerate(sizes)
        ]
        next_task_id += len(tasks)
        output = 0.0
        if phase_output_data is not None and index < len(phase_output_data):
            output = float(phase_output_data[index])
        parents = (index - 1,) if index > 0 else ()
        phases.append(
            Phase(
                index=index,
                tasks=tasks,
                parents=parents,
                output_data=output,
                slowstart=slowstart,
            )
        )
    return Job(job_id=job_id, arrival_time=arrival_time, phases=phases, name=name)
