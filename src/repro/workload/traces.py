"""Traces: job sequences with arrival times, plus utilization targeting.

The paper speeds up trace replay to evaluate a range of average cluster
utilizations (60%-90%, §7.1). We reproduce this by rescaling interarrival
gaps so that the offered load ``rho = lambda * E[job work] / S`` matches a
target.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.workload.job import Job


def arrival_rate_for_utilization(
    mean_job_work: float,
    total_slots: int,
    utilization: float,
) -> float:
    """Poisson arrival rate (jobs/time-unit) giving the target utilization.

    ``rho = lambda * E[work] / S  =>  lambda = rho * S / E[work]``.
    """
    if mean_job_work <= 0:
        raise ValueError("mean_job_work must be positive")
    if total_slots <= 0:
        raise ValueError("total_slots must be positive")
    if not 0.0 < utilization < 1.0:
        raise ValueError("utilization must be in (0, 1)")
    return utilization * total_slots / mean_job_work


@dataclass
class Trace:
    """An ordered sequence of jobs to replay."""

    jobs: List[Job]

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda j: j.arrival_time)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(j.num_tasks for j in self.jobs)

    @property
    def total_work(self) -> float:
        return sum(t.size for j in self.jobs for t in j.all_tasks())

    @property
    def makespan_lower_bound(self) -> float:
        """Total work / infinite parallelism is 0; this is last arrival."""
        return self.jobs[-1].arrival_time if self.jobs else 0.0

    def offered_utilization(self, total_slots: int) -> float:
        """Empirical offered load over the arrival window."""
        if not self.jobs or total_slots <= 0:
            return 0.0
        span = self.jobs[-1].arrival_time - self.jobs[0].arrival_time
        if span <= 0:
            return float("inf")
        return self.total_work / (span * total_slots)

    def rescaled_to_utilization(self, total_slots: int, utilization: float) -> "Trace":
        """Return a copy with interarrival gaps scaled to the target load.

        Mirrors the paper's "speed-up the trace appropriately" (§7.1).
        """
        current = self.offered_utilization(total_slots)
        if current in (0.0, float("inf")):
            raise ValueError("trace has no arrival span to rescale")
        factor = current / utilization
        jobs = copy.deepcopy(self.jobs)
        base = jobs[0].arrival_time
        for job in jobs:
            job.arrival_time = base + (job.arrival_time - base) * factor
        return Trace(jobs=jobs)

    def fresh_copy(self) -> "Trace":
        """Deep copy with runtime state cleared — safe to replay."""
        jobs = copy.deepcopy(self.jobs)
        for job in jobs:
            job.reset_runtime_state()
        return Trace(jobs=jobs)


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Interleave several traces by arrival time.

    Jobs are deep-copied (and their runtime state reset) so that replaying
    the merged trace cannot mutate the source traces' Job objects. Traces
    produced by independent generators can carry colliding job ids (each
    generator numbers from 0); since the simulators key jobs by id, the
    merged copies are renumbered sequentially when a collision exists.
    """
    # Copy per occurrence (not one deepcopy of the combined list, whose
    # memoization would alias a job passed in twice, e.g. merge([a, a])).
    all_jobs: List[Job] = []
    for trace in traces:
        for job in trace.jobs:
            clone = copy.deepcopy(job)
            clone.reset_runtime_state()
            all_jobs.append(clone)
    merged = Trace(jobs=all_jobs)
    if len({job.job_id for job in merged.jobs}) != len(merged.jobs):
        for new_id, job in enumerate(merged.jobs):
            job.job_id = new_id
            for task in job.all_tasks():
                task.job_id = new_id
    return merged
