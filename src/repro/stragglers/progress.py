"""Task copies and the progress view observed by speculation algorithms.

Real frameworks expose per-task progress counters (fraction of input
processed); LATE/Mantri/GRASS estimate completion times from progress
*rates*. We model a copy's true duration as ``size * slowdown * locality
penalty`` and let speculation policies observe elapsed time and progress —
optionally blurred by multiplicative noise to mimic imperfect counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workload.task import Task


@dataclass(slots=True)
class TaskCopy:
    """One running (or finished/killed) copy of a task.

    Attributes
    ----------
    copy_id:
        Unique per simulation.
    task:
        The task this is a copy of.
    machine_id:
        Where it runs.
    start_time:
        Launch time.
    duration:
        True wall-clock duration (size * slowdown * locality penalty).
    speculative:
        True if this copy was launched by a speculation policy.
    """

    copy_id: int
    task: Task
    machine_id: int
    start_time: float
    duration: float
    speculative: bool = False

    killed: bool = field(default=False, compare=False)
    finished: bool = field(default=False, compare=False)
    end_time: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("copy duration must be positive")

    @property
    def is_running(self) -> bool:
        return not self.killed and not self.finished

    @property
    def expected_finish_time(self) -> float:
        return self.start_time + self.duration

    def elapsed(self, now: float) -> float:
        end = self.end_time if self.end_time is not None else now
        return max(0.0, min(end, now) - self.start_time)

    def progress(self, now: float) -> float:
        """Fraction complete in [0, 1]."""
        return min(1.0, self.elapsed(now) / self.duration)

    def progress_rate(self, now: float) -> float:
        """Progress per unit time; LATE's estimator.

        Progress is linear in our execution model, so once a copy has run
        at all its observed rate is exactly ``1/duration``."""
        if now <= self.start_time:
            return float("inf")
        return 1.0 / self.duration

    def estimated_remaining(self, now: float) -> float:
        """(1 - progress) / progress_rate — the trem estimator used by
        speculation policies."""
        if now <= self.start_time:
            return self.task.size  # nothing observed yet: assume nominal
        return max(0.0, self.start_time + self.duration - now)

    def resource_time(self, now: float) -> float:
        """Slot-time consumed so far (for wasted-work accounting)."""
        return self.elapsed(now)
