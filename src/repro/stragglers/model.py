"""Straggler models: per-copy slowdown multipliers.

The paper's stragglers occur "naturally" on its 200-node cluster, with
frequency and magnitude consistent with prior studies: tasks can run up to
8x slower than expected [12], and causes are hard to model (IO contention,
maintenance, hardware). We substitute an explicit generative model:

* every *copy* of a task draws an independent slowdown multiplier;
* with probability ``straggler_prob`` the copy straggles — its multiplier
  is drawn from a heavy (bounded Pareto) tail up to ``max_slowdown``;
* otherwise the multiplier is a small jitter around 1.

Because the draw is per *copy*, launching a speculative copy re-rolls the
dice — exactly the race that speculation exploits. A machine-correlated
variant makes a subset of machines persistently flaky, which is what
blacklisting (and LATE's "avoid slow nodes") addresses; the paper notes
machines are otherwise equally likely to cause stragglers [12].
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, List, Set, Tuple

from repro.workload.distributions import (
    BoundedParetoDistribution,
    ParetoDistribution,
    UniformDistribution,
)
from repro.workload.task import Task


class StragglerModel(ABC):
    """Produces a slowdown multiplier for a task copy."""

    @abstractmethod
    def slowdown(
        self,
        rng: random.Random,
        task: Task,
        machine_id: int,
        attempt_index: int,
    ) -> float:
        """Multiplier (>= some small positive value) applied to task size."""

    def slowdown_many(
        self,
        rng: random.Random,
        items: Iterable[Tuple[Task, int, int]],
    ) -> List[float]:
        """Batched draws for ``(task, machine_id, attempt_index)`` items.

        Consumes the RNG stream *exactly* as the equivalent sequence of
        :meth:`slowdown` calls would, so batched and one-at-a-time
        callers produce bit-identical simulations. Subclasses may
        override with a tighter loop but must preserve the stream.
        """
        slowdown = self.slowdown
        return [
            slowdown(rng, task, machine_id, attempt)
            for task, machine_id, attempt in items
        ]


class NoStragglerModel(StragglerModel):
    """Ideal cluster: every copy runs at nominal speed."""

    def slowdown(
        self,
        rng: random.Random,
        task: Task,
        machine_id: int,
        attempt_index: int,
    ) -> float:
        return 1.0


class ParetoRedrawStragglerModel(StragglerModel):
    """The paper's analytical model: every copy is an i.i.d. Pareto draw.

    Task *sizes* in the workload generator are already Pareto(beta) draws
    — they are the durations of the original copies. A speculative copy
    re-draws its duration independently from the same distribution
    (truncated below at ``scale``), so stragglers are simply unlucky draws
    and speculation is a race between draws. This is exactly the model
    under which the 2/beta virtual-size threshold is derived (§4.1, [8]).

    Parameters
    ----------
    beta:
        Pareto tail index of task durations.
    scale:
        Pareto scale (minimum duration). Should match the workload
        profile's ``task_scale``.
    """

    def __init__(self, beta: float = 1.4, scale: float = 1.0) -> None:
        if beta <= 0:
            raise ValueError("beta must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.beta = beta
        self.scale = scale
        self._dist = ParetoDistribution(shape=beta, scale=scale)
        # Cached inverse-CDF constant: sample = scale * u ** (-1/beta),
        # identical float operations to ParetoDistribution.sample.
        self._neg_inv_shape = -1.0 / beta

    def slowdown(
        self,
        rng: random.Random,
        task: Task,
        machine_id: int,
        attempt_index: int,
    ) -> float:
        if attempt_index == 0:
            return 1.0  # the original copy runs its drawn size
        u = 1.0 - rng.random()  # avoid 0
        fresh = self.scale * u**self._neg_inv_shape
        return fresh / task.size

    def slowdown_many(
        self,
        rng: random.Random,
        items: Iterable[Tuple[Task, int, int]],
    ) -> List[float]:
        random_ = rng.random
        scale = self.scale
        exponent = self._neg_inv_shape
        out: List[float] = []
        append = out.append
        for task, _machine_id, attempt in items:
            if attempt == 0:
                append(1.0)
            else:
                append(scale * (1.0 - random_()) ** exponent / task.size)
        return out


class ParetoStragglerModel(StragglerModel):
    """I.i.d. per-copy stragglers with a bounded-Pareto tail.

    Parameters
    ----------
    straggler_prob:
        Probability a copy straggles. Facebook's cluster sees speculative
        tasks at ~25% of all tasks; a straggle probability in the 0.1-0.25
        range produces comparable speculation pressure.
    tail_shape:
        Pareto shape of the straggle multiplier (smaller = heavier).
    min_slowdown / max_slowdown:
        Straggle multiplier support; the paper cites up to 8x.
    jitter:
        Half-width of the benign jitter around 1.0 for non-stragglers.
    """

    def __init__(
        self,
        straggler_prob: float = 0.15,
        tail_shape: float = 1.1,
        min_slowdown: float = 2.0,
        max_slowdown: float = 8.0,
        jitter: float = 0.1,
    ) -> None:
        if not 0.0 <= straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        if min_slowdown <= 1.0:
            raise ValueError("min_slowdown must exceed 1.0")
        if max_slowdown < min_slowdown:
            raise ValueError("max_slowdown must be >= min_slowdown")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.straggler_prob = straggler_prob
        self._tail = BoundedParetoDistribution(
            shape=tail_shape, lo=min_slowdown, hi=max_slowdown
        )
        self._benign = UniformDistribution(1.0 - jitter, 1.0 + jitter)
        # Cached truncated-Pareto inverse-CDF constants; the expressions
        # in slowdown() replay BoundedParetoDistribution.sample and
        # rng.uniform with identical float operations.
        a, lo, hi = tail_shape, min_slowdown, max_slowdown
        self._tail_lo_pow = lo**-a
        self._tail_span = lo**-a - hi**-a
        self._tail_neg_inv_shape = -1.0 / a
        self._benign_lo = 1.0 - jitter
        self._benign_hi = 1.0 + jitter

    def slowdown(
        self,
        rng: random.Random,
        task: Task,
        machine_id: int,
        attempt_index: int,
    ) -> float:
        if rng.random() < self.straggler_prob:
            u = rng.random()
            return (
                self._tail_lo_pow - u * self._tail_span
            ) ** self._tail_neg_inv_shape
        lo = self._benign_lo
        return lo + (self._benign_hi - lo) * rng.random()

    def expected_slowdown(self) -> float:
        """Analytic mean multiplier (useful for tnew estimates)."""
        return (
            self.straggler_prob * self._tail.mean()
            + (1.0 - self.straggler_prob) * self._benign.mean()
        )


class MachineCorrelatedStragglerModel(StragglerModel):
    """A fraction of machines is persistently flaky.

    Copies on flaky machines straggle with elevated probability. This is
    the regime where blacklisting helps and where LATE's "schedule the
    speculative copy on a fast node" matters.
    """

    def __init__(
        self,
        num_machines: int,
        flaky_fraction: float = 0.1,
        flaky_straggler_prob: float = 0.6,
        base_straggler_prob: float = 0.05,
        tail_shape: float = 1.1,
        min_slowdown: float = 2.0,
        max_slowdown: float = 8.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= flaky_fraction <= 1.0:
            raise ValueError("flaky_fraction must be in [0, 1]")
        self.num_machines = num_machines
        rng = random.Random(seed)
        num_flaky = int(round(flaky_fraction * num_machines))
        self.flaky_machines: Set[int] = set(
            rng.sample(range(num_machines), num_flaky)
        )
        self._flaky = ParetoStragglerModel(
            straggler_prob=flaky_straggler_prob,
            tail_shape=tail_shape,
            min_slowdown=min_slowdown,
            max_slowdown=max_slowdown,
        )
        self._base = ParetoStragglerModel(
            straggler_prob=base_straggler_prob,
            tail_shape=tail_shape,
            min_slowdown=min_slowdown,
            max_slowdown=max_slowdown,
        )

    def is_flaky(self, machine_id: int) -> bool:
        return machine_id in self.flaky_machines

    def slowdown(
        self,
        rng: random.Random,
        task: Task,
        machine_id: int,
        attempt_index: int,
    ) -> float:
        model = self._flaky if machine_id in self.flaky_machines else self._base
        return model.slowdown(rng, task, machine_id, attempt_index)
