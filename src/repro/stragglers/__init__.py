"""Straggler injection and task-copy progress tracking."""

from repro.stragglers.model import (
    MachineCorrelatedStragglerModel,
    NoStragglerModel,
    ParetoRedrawStragglerModel,
    ParetoStragglerModel,
    StragglerModel,
)
from repro.stragglers.progress import TaskCopy

__all__ = [
    "StragglerModel",
    "NoStragglerModel",
    "ParetoStragglerModel",
    "ParetoRedrawStragglerModel",
    "MachineCorrelatedStragglerModel",
    "TaskCopy",
]
