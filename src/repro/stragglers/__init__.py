"""Straggler injection and task-copy progress tracking."""

from repro.stragglers.model import (
    MachineCorrelatedStragglerModel,
    NoStragglerModel,
    ParetoRedrawStragglerModel,
    ParetoStragglerModel,
    StragglerModel,
)
from repro.stragglers.progress import TaskCopy

__all__ = [
    "StragglerModel",
    "NoStragglerModel",
    "ParetoStragglerModel",
    "ParetoRedrawStragglerModel",
    "MachineCorrelatedStragglerModel",
    "TaskCopy",
    "make_straggler_model",
]


def make_straggler_model(name: str, profile=None, **kwargs) -> StragglerModel:
    """Build a registered straggler model by name.

    Resolution goes through :data:`repro.registry.STRAGGLER_MODELS`;
    ``profile`` (a :class:`~repro.workload.generator.WorkloadProfile`)
    parameterizes models that depend on the workload's tail, e.g.
    ``pareto-redraw``.
    """
    from repro.registry import make_straggler_model as _make

    return _make(name, profile, **kwargs)
